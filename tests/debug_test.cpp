// Debug facilities: event trace ring semantics, thread dumps, host-OS call accounting, and
// the scheduler statistics surface.

#include <gtest/gtest.h>

#include "src/core/pthread.hpp"
#include "src/debug/trace.hpp"
#include "src/hostos/unix_if.hpp"

namespace fsup {
namespace {

class DebugTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pt_reinit();
    debug::trace::Clear();
    debug::trace::Enable(false);
  }
  void TearDown() override { debug::trace::Enable(false); }
};

TEST_F(DebugTest, TraceDisabledRecordsNothing) {
  debug::trace::Log(debug::trace::Event::kUser, 1, 2);
  EXPECT_EQ(0u, debug::trace::Count());
}

TEST_F(DebugTest, TraceRecordsInOrder) {
  debug::trace::Enable(true);
  debug::trace::Log(debug::trace::Event::kUser, 1, 10);
  debug::trace::Log(debug::trace::Event::kUser, 2, 20);
  debug::trace::Log(debug::trace::Event::kUser, 3, 30);
  debug::trace::Enable(false);
  ASSERT_EQ(3u, debug::trace::Count());
  EXPECT_EQ(1u, debug::trace::Get(0).a);
  EXPECT_EQ(2u, debug::trace::Get(1).a);
  EXPECT_EQ(3u, debug::trace::Get(2).a);
  EXPECT_LE(debug::trace::Get(0).t_ns, debug::trace::Get(2).t_ns);
}

TEST_F(DebugTest, TraceCapturesContextSwitches) {
  debug::trace::Enable(true);
  pt_thread_t t;
  auto body = +[](void*) -> void* { return nullptr; };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  debug::trace::Enable(false);
  int switches = 0;
  for (size_t i = 0; i < debug::trace::Count(); ++i) {
    if (debug::trace::Get(i).event == debug::trace::Event::kSwitch) {
      ++switches;
    }
  }
  EXPECT_GE(switches, 2);  // out to the child and back at minimum
}

TEST_F(DebugTest, TraceClearResets) {
  debug::trace::Enable(true);
  debug::trace::Log(debug::trace::Event::kUser, 1, 1);
  debug::trace::Clear();
  EXPECT_EQ(0u, debug::trace::Count());
}

TEST_F(DebugTest, EventNamesAreStable) {
  EXPECT_STREQ("switch", debug::trace::Name(debug::trace::Event::kSwitch));
  EXPECT_STREQ("lock", debug::trace::Name(debug::trace::Event::kMutexLock));
  EXPECT_STREQ("boost", debug::trace::Name(debug::trace::Event::kPrioBoost));
  EXPECT_STREQ("signal", debug::trace::Name(debug::trace::Event::kSignal));
}

TEST_F(DebugTest, DumpThreadsIsSafeWhileThreadsBlocked) {
  static pt_sem_t sem;
  ASSERT_EQ(0, pt_sem_init(&sem, 0));
  auto body = +[](void*) -> void* {
    pt_sem_wait(&sem);
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  pt_dump_threads();  // must not crash with a blocked thread on a wait queue
  ASSERT_EQ(0, pt_sem_post(&sem));
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_sem_destroy(&sem);
}

TEST_F(DebugTest, StatsAreMonotonic) {
  const RuntimeStats s1 = pt_stats();
  pt_yield();
  pt_thread_t t;
  auto body = +[](void*) -> void* {
    pt_yield();
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  const RuntimeStats s2 = pt_stats();
  EXPECT_GE(s2.ctx_switches, s1.ctx_switches);
  EXPECT_GE(s2.dispatches, s1.dispatches);
  EXPECT_GE(s2.kernel_entries, s1.kernel_entries);
}

TEST_F(DebugTest, HostCallCountsPerService) {
  hostos::ResetCallCounts();
  sigset_t cur;
  hostos::Sigprocmask(SIG_BLOCK, nullptr, &cur);
  hostos::Sigprocmask(SIG_BLOCK, nullptr, &cur);
  EXPECT_EQ(2u, hostos::CallCount(hostos::Call::kSigprocmask));
  EXPECT_EQ(0u, hostos::CallCount(hostos::Call::kSetitimer));
  EXPECT_GE(hostos::TotalCallCount(), 2u);
}

TEST_F(DebugTest, StackMapsCountedViaHostos) {
  hostos::ResetCallCounts();
  size_t mapped = 0;
  void* stack = hostos::MapStack(64 * 1024, &mapped);
  ASSERT_NE(nullptr, stack);
  EXPECT_EQ(1u, hostos::CallCount(hostos::Call::kMmap));
  EXPECT_EQ(1u, hostos::CallCount(hostos::Call::kMprotect));  // the guard page
  EXPECT_GE(mapped, 64u * 1024);
  hostos::UnmapStack(stack, mapped);
  EXPECT_EQ(1u, hostos::CallCount(hostos::Call::kMunmap));
}

TEST_F(DebugTest, FifoComputePathMakesNoKernelCalls) {
  // The paper's "few operating system calls" objective, asserted: a compute-and-sync
  // workload (no timers, no RR) performs ZERO host kernel calls through the library.
  pt_thread_t t;
  auto body = +[](void*) -> void* {
    pt_mutex_t m;
    pt_mutex_init(&m);
    for (int i = 0; i < 1000; ++i) {
      pt_mutex_lock(&m);
      pt_mutex_unlock(&m);
      if (i % 100 == 0) {
        pt_yield();
      }
    }
    pt_mutex_destroy(&m);
    return nullptr;
  };
  // Warm-up (thread pool, lazy init paths).
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  hostos::ResetCallCounts();
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(0u, hostos::TotalCallCount());
}

}  // namespace
}  // namespace fsup
