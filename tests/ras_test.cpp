// Restartable atomic sequences (paper Figure 4): the three lock primitives, the registry,
// and PC-rewind behaviour under real signal interruption.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>

#include "src/arch/ras.hpp"
#include "src/core/pthread.hpp"
#include "src/sync/mutex.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

class RasTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(RasTest, RasLockAcquiresAndRecordsOwner) {
  volatile uint8_t lock = 0;
  void* volatile owner = nullptr;
  int self = 0;
  EXPECT_EQ(0, fsup_ras_lock(&lock, &self, &owner));
  EXPECT_EQ(1, lock);
  EXPECT_EQ(&self, owner);
}

TEST_F(RasTest, RasLockFailsWhenHeld) {
  volatile uint8_t lock = 1;
  void* volatile owner = nullptr;
  int self = 0;
  EXPECT_EQ(1, fsup_ras_lock(&lock, &self, &owner));
  EXPECT_EQ(nullptr, owner);  // not overwritten on failure
}

TEST_F(RasTest, RasUnlockReleasesWhenNoWaiters) {
  volatile uint8_t lock = 1;
  volatile uint8_t has_waiters = 0;
  EXPECT_EQ(0, fsup_ras_unlock(&lock, &has_waiters));
  EXPECT_EQ(0, lock);
}

TEST_F(RasTest, RasUnlockDivertsWithWaiters) {
  volatile uint8_t lock = 1;
  volatile uint8_t has_waiters = 1;
  EXPECT_EQ(1, fsup_ras_unlock(&lock, &has_waiters));
  EXPECT_EQ(1, lock);  // untouched: the kernel handoff path must run
}

TEST_F(RasTest, XchgLockReturnsPreviousValue) {
  volatile uint8_t lock = 0;
  EXPECT_EQ(0, fsup_xchg_lock(&lock));
  EXPECT_EQ(1, lock);
  EXPECT_EQ(1, fsup_xchg_lock(&lock));
}

TEST_F(RasTest, CasLockAcquiresAndReportsOwner) {
  void* volatile word = nullptr;
  int me = 0, other = 0;
  EXPECT_EQ(nullptr, fsup_cas_lock(&word, &me));  // acquired
  EXPECT_EQ(&me, word);                           // owner == lock word, one instruction
  EXPECT_EQ(&me, fsup_cas_lock(&word, &other));   // held: returns current owner
}

TEST_F(RasTest, SequencesAreRegistered) {
  EXPECT_TRUE(ras::Inside(reinterpret_cast<uintptr_t>(fsup_ras_lock_begin)));
  EXPECT_FALSE(ras::Inside(reinterpret_cast<uintptr_t>(fsup_ras_lock_end)));
  EXPECT_TRUE(ras::Inside(reinterpret_cast<uintptr_t>(fsup_ras_unlock_begin)));
  EXPECT_FALSE(ras::Inside(reinterpret_cast<uintptr_t>(&ras::Register)));
}

TEST_F(RasTest, RewindMovesPcToSequenceStart) {
  auto begin = reinterpret_cast<uintptr_t>(fsup_ras_lock_begin);
  uintptr_t pc = begin + 3;  // somewhere inside
  EXPECT_TRUE(ras::RewindIfInside(&pc));
  EXPECT_EQ(begin, pc);
  uintptr_t outside = reinterpret_cast<uintptr_t>(fsup_ras_lock_end) + 8;
  EXPECT_FALSE(ras::RewindIfInside(&outside));
}

TEST_F(RasTest, MutexFastPathSurvivesSignalStorm) {
  // Hammer the RAS-based mutex fast path while a real interval timer fires as fast as the
  // kernel allows. Any lost restart shows up as a corrupted counter or a stuck lock.
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  static volatile int alarms = 0;
  alarms = 0;
  auto handler = +[](int) { alarms = alarms + 1; };
  ASSERT_EQ(0, pt_sigaction(SIGALRM, handler, 0));

  long counter = 0;
  const int64_t until = NowNs() + 300 * 1000 * 1000;  // 300ms of hammering
  while (NowNs() < until) {
    const int before = alarms;
    // 50µs: long enough that the arm call returns before delivery, short enough that
    // thousands of interrupts land inside the lock/unlock hammering below.
    ASSERT_EQ(0, pt_alarm(50 * 1000));
    while (alarms == before && NowNs() < until) {
      for (int i = 0; i < 200; ++i) {
        ASSERT_EQ(0, pt_mutex_lock(&m));
        ++counter;
        ASSERT_EQ(0, pt_mutex_unlock(&m));
      }
    }
  }
  EXPECT_GT(alarms, 3);  // the storm really happened
  EXPECT_EQ(nullptr, m.holder());
  EXPECT_EQ(nullptr, m.owner);  // the owner word IS the lock state: cleared on release
  EXPECT_GT(counter, 0);
  pt_mutex_destroy(&m);
}

}  // namespace
}  // namespace fsup
