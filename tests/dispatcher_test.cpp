// Dispatcher behaviour (paper Figure 2): deferred signal replay, preemption decisions,
// the paper's "two sigsetmask calls per signal" claim, and idle-loop wakeups.

#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <vector>

#include "src/core/bench_probes.hpp"
#include "src/core/pthread.hpp"
#include "src/hostos/unix_if.hpp"
#include "src/kernel/kernel.hpp"
#include "src/util/dual_loop_timer.hpp"

namespace fsup {
namespace {

class DispatcherTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

TEST_F(DispatcherTest, SignalCaughtInKernelIsDeferredAndReplayed) {
  static int handled = 0;
  handled = 0;
  auto handler = +[](int) { ++handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));

  const uint64_t deferred_before = pt_stats().deferred_signals;
  kernel::Enter();
  ::kill(::getpid(), SIGUSR1);  // a REAL process signal, arriving while in the kernel
  // The universal handler must have logged it without acting.
  EXPECT_EQ(0, handled);
  EXPECT_EQ(deferred_before + 1, pt_stats().deferred_signals);
  kernel::Exit();  // Figure 2: the exit replays the log
  EXPECT_EQ(1, handled);
}

TEST_F(DispatcherTest, SignalOutsideKernelHandledImmediately) {
  static int handled = 0;
  handled = 0;
  auto handler = +[](int) { ++handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));
  ::kill(::getpid(), SIGUSR1);
  // Delivery is synchronous on a single-CPU process: the handler ran before kill returned.
  EXPECT_EQ(1, handled);
}

TEST_F(DispatcherTest, TwoSigprocmasksPerExternalSignal) {
  // Paper: "This implementation uses two calls to sigsetmask for each signal received by the
  // process." Measured, not asserted from prose: deliver an external signal to a handler and
  // count the mask syscalls in the window. The no-context-switch delivery path performs one
  // unblock on handler entry (call #1); the second call is only needed when the dispatcher
  // resumes an interrupted thread — so the count is 1 here and ≤2 in general.
  static int handled = 0;
  handled = 0;
  auto handler = +[](int) { ++handled; };
  ASSERT_EQ(0, pt_sigaction(SIGUSR1, handler, 0));
  probe::ResetHostCallCounts();
  ::kill(::getpid(), SIGUSR1);
  EXPECT_EQ(1, handled);
  EXPECT_LE(probe::SigprocmaskCount(), 2u);
  EXPECT_GE(probe::SigprocmaskCount(), 1u);
}

TEST_F(DispatcherTest, ExternalSignalPreemptsForHigherPriorityThread) {
  // A real signal readies a higher-priority thread; the interrupted thread must be preempted
  // before the handler frame unwinds (dispatch happens inside the universal handler).
  static bool woke_ran = false;
  static pt_sem_t sem;
  woke_ran = false;
  ASSERT_EQ(0, pt_sem_init(&sem, 0));
  auto hi_body = +[](void*) -> void* {
    pt_sem_wait(&sem);
    woke_ran = true;
    return nullptr;
  };
  ThreadAttr hi;
  hi.priority = kDefaultPrio + 1;
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, &hi, hi_body, nullptr));
  pt_yield();  // high thread blocks on the semaphore

  auto handler = +[](int) {
    pt_sem_post(&sem);  // readies the higher-priority thread from handler context
  };
  ASSERT_EQ(0, pt_sigaction(SIGUSR2, handler, 0));
  ::kill(::getpid(), SIGUSR2);
  // By the time kill returns, the high thread must have preempted us and finished.
  EXPECT_TRUE(woke_ran);
  ASSERT_EQ(0, pt_join(t, nullptr));
  pt_sem_destroy(&sem);
}

TEST_F(DispatcherTest, PreemptedThreadGoesToHeadOfItsLevel) {
  // Preemption (unlike yield) must not cost the thread its queue position.
  static std::vector<int>* order;
  std::vector<int> local;
  order = &local;
  struct Arg {
    int id;
  };
  auto body = +[](void* ap) -> void* {
    order->push_back(static_cast<Arg*>(ap)->id);
    return nullptr;
  };
  Arg a1{1}, a2{2};
  pt_thread_t t1, t2, thi;
  ASSERT_EQ(0, pt_create(&t1, nullptr, body, &a1));
  ASSERT_EQ(0, pt_create(&t2, nullptr, body, &a2));
  (void)a1;
  (void)a2;
  // A higher-priority thread preempts us now; when it blocks, WE must resume before t1/t2
  // (we were preempted, so we re-enter at the head of our level).
  ThreadAttr hi;
  hi.priority = kDefaultPrio + 1;
  static pt_sem_t sem;
  ASSERT_EQ(0, pt_sem_init(&sem, 0));
  auto hi_body = +[](void*) -> void* {
    pt_sem_wait(&sem);
    return nullptr;
  };
  ASSERT_EQ(0, pt_create(&thi, &hi, hi_body, nullptr));  // preempts us, blocks on sem
  order->push_back(0);  // we are running again — before t1 and t2
  ASSERT_EQ(0, pt_sem_post(&sem));
  ASSERT_EQ(0, pt_join(t1, nullptr));
  ASSERT_EQ(0, pt_join(t2, nullptr));
  ASSERT_EQ(0, pt_join(thi, nullptr));
  ASSERT_EQ(3u, local.size());
  EXPECT_EQ(0, local[0]);
  EXPECT_EQ(1, local[1]);
  EXPECT_EQ(2, local[2]);
  pt_sem_destroy(&sem);
}

TEST_F(DispatcherTest, IdleLoopWakesOnExternalSignalForSigwait) {
  // Every thread blocked (main in sigwait): the idle loop must sleep and wake on the real
  // signal rather than deadlock-abort (sigwait counts as an external wakeup source).
  const pid_t pid = ::getpid();
  // A helper OS process sends SIGUSR1 after 50ms. fork() is safe here: the child execs
  // nothing and only sleeps + kills.
  const pid_t child = ::fork();
  if (child == 0) {
    ::usleep(50 * 1000);
    ::kill(pid, SIGUSR1);
    ::_exit(0);
  }
  int got = 0;
  const int rc = pt_sigwait(SigBit(SIGUSR1), &got, 5LL * 1000 * 1000 * 1000);
  EXPECT_EQ(0, rc);
  EXPECT_EQ(SIGUSR1, got);
}

}  // namespace
}  // namespace fsup
