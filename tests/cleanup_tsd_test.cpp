// Cleanup handlers (function-based, per the paper's language-independence argument) and
// thread-specific data.

#include <gtest/gtest.h>

#include <cerrno>
#include <vector>

#include "src/core/pthread.hpp"

namespace fsup {
namespace {

class CleanupTsdTest : public ::testing::Test {
 protected:
  void SetUp() override { pt_reinit(); }
};

std::vector<int>* g_order = nullptr;

void Record1(void*) { g_order->push_back(1); }
void Record2(void*) { g_order->push_back(2); }
void Record3(void*) { g_order->push_back(3); }

TEST_F(CleanupTsdTest, CleanupRunsNewestFirstOnExit) {
  std::vector<int> order;
  g_order = &order;
  auto body = +[](void*) -> void* {
    pt_cleanup_push(&Record1, nullptr);
    pt_cleanup_push(&Record2, nullptr);
    pt_cleanup_push(&Record3, nullptr);
    pt_exit(nullptr);
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(3u, order.size());
  EXPECT_EQ(3, order[0]);
  EXPECT_EQ(2, order[1]);
  EXPECT_EQ(1, order[2]);
}

TEST_F(CleanupTsdTest, PopWithoutExecuteSkipsHandler) {
  std::vector<int> order;
  g_order = &order;
  auto body = +[](void*) -> void* {
    pt_cleanup_push(&Record1, nullptr);
    pt_cleanup_push(&Record2, nullptr);
    EXPECT_EQ(0, pt_cleanup_pop(false));  // drops Record2 silently
    pt_exit(nullptr);
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(1u, order.size());
  EXPECT_EQ(1, order[0]);
}

TEST_F(CleanupTsdTest, PopWithExecuteRunsHandler) {
  std::vector<int> order;
  g_order = &order;
  auto body = +[](void*) -> void* {
    pt_cleanup_push(&Record1, nullptr);
    EXPECT_EQ(0, pt_cleanup_pop(true));
    return nullptr;  // normal return: nothing left on the stack
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(1u, order.size());
  EXPECT_EQ(1, order[0]);
}

TEST_F(CleanupTsdTest, PopEmptyStackIsEinval) {
  EXPECT_EQ(EINVAL, pt_cleanup_pop(true));
}

TEST_F(CleanupTsdTest, CleanupRunsOnNormalReturnToo) {
  // Entry-function return goes through pt_exit, so leftover handlers still run.
  std::vector<int> order;
  g_order = &order;
  auto body = +[](void*) -> void* {
    pt_cleanup_push(&Record1, nullptr);
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  ASSERT_EQ(1u, order.size());
}

// -- TSD ---------------------------------------------------------------------------------

TEST_F(CleanupTsdTest, KeyCreateSetGet) {
  pt_key_t key;
  ASSERT_EQ(0, pt_key_create(&key, nullptr));
  EXPECT_EQ(nullptr, pt_getspecific(key));
  int value = 7;
  ASSERT_EQ(0, pt_setspecific(key, &value));
  EXPECT_EQ(&value, pt_getspecific(key));
  ASSERT_EQ(0, pt_key_delete(key));
  EXPECT_EQ(nullptr, pt_getspecific(key));  // deleted key: invalid
}

TEST_F(CleanupTsdTest, ValuesArePerThread) {
  pt_key_t key;
  ASSERT_EQ(0, pt_key_create(&key, nullptr));
  static pt_key_t k;
  k = key;
  int mine = 1;
  ASSERT_EQ(0, pt_setspecific(k, &mine));
  auto body = +[](void*) -> void* {
    EXPECT_EQ(nullptr, pt_getspecific(k));  // fresh slot in the new thread
    static int theirs = 2;
    EXPECT_EQ(0, pt_setspecific(k, &theirs));
    EXPECT_EQ(&theirs, pt_getspecific(k));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(&mine, pt_getspecific(k));  // ours untouched
  pt_key_delete(key);
}

TEST_F(CleanupTsdTest, DestructorRunsAtThreadExit) {
  static int destroyed_with = 0;
  destroyed_with = 0;
  pt_key_t key;
  ASSERT_EQ(0, pt_key_create(&key, +[](void* v) {
    destroyed_with = *static_cast<int*>(v);
  }));
  static pt_key_t k;
  k = key;
  auto body = +[](void*) -> void* {
    static int payload = 42;
    EXPECT_EQ(0, pt_setspecific(k, &payload));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(42, destroyed_with);
  pt_key_delete(key);
}

TEST_F(CleanupTsdTest, DestructorNotRunForNullValues) {
  static int runs = 0;
  runs = 0;
  pt_key_t key;
  ASSERT_EQ(0, pt_key_create(&key, +[](void*) { ++runs; }));
  auto body = +[](void*) -> void* { return nullptr; };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(0, runs);
  pt_key_delete(key);
}

TEST_F(CleanupTsdTest, DestructorSettingNewValueReRuns) {
  static int runs = 0;
  static pt_key_t k;
  runs = 0;
  ASSERT_EQ(0, pt_key_create(&k, +[](void* v) {
    ++runs;
    if (runs == 1) {
      pt_setspecific(k, v);  // re-arm once: POSIX repeats destructor iteration
    }
  }));
  auto body = +[](void*) -> void* {
    static int payload = 1;
    EXPECT_EQ(0, pt_setspecific(k, &payload));
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  ASSERT_EQ(0, pt_join(t, nullptr));
  EXPECT_EQ(2, runs);
  pt_key_delete(k);
}

TEST_F(CleanupTsdTest, KeyExhaustionIsEagain) {
  std::vector<pt_key_t> keys;
  pt_key_t key;
  int rc;
  while ((rc = pt_key_create(&key, nullptr)) == 0) {
    keys.push_back(key);
    ASSERT_LE(keys.size(), static_cast<size_t>(kMaxTsdKeys));
  }
  EXPECT_EQ(EAGAIN, rc);
  EXPECT_EQ(static_cast<size_t>(kMaxTsdKeys), keys.size());
  for (pt_key_t k2 : keys) {
    EXPECT_EQ(0, pt_key_delete(k2));
  }
}

TEST_F(CleanupTsdTest, InvalidKeyOperations) {
  EXPECT_EQ(EINVAL, pt_key_delete(-1));
  EXPECT_EQ(EINVAL, pt_key_delete(kMaxTsdKeys));
  EXPECT_EQ(EINVAL, pt_setspecific(-1, nullptr));
  EXPECT_EQ(nullptr, pt_getspecific(12345));
  EXPECT_EQ(EINVAL, pt_key_create(nullptr, nullptr));
}

TEST_F(CleanupTsdTest, CancelledThreadRunsCleanupThenTsdDestructors) {
  static std::vector<int> log;
  static pt_key_t k;
  log.clear();
  ASSERT_EQ(0, pt_key_create(&k, +[](void*) { log.push_back(2); }));
  static pt_sem_t sem;
  ASSERT_EQ(0, pt_sem_init(&sem, 0));
  auto body = +[](void*) -> void* {
    static int payload = 1;
    pt_setspecific(k, &payload);
    pt_cleanup_push(+[](void*) { log.push_back(1); }, nullptr);
    pt_sem_wait(&sem);  // interruption point: cancelled here
    return nullptr;
  };
  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, body, nullptr));
  pt_yield();
  ASSERT_EQ(0, pt_cancel(t));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(kCanceled, ret);
  ASSERT_EQ(2u, log.size());
  EXPECT_EQ(1, log[0]);  // cleanup first
  EXPECT_EQ(2, log[1]);  // then TSD destructors
  pt_key_delete(k);
  pt_sem_destroy(&sem);
}

}  // namespace
}  // namespace fsup
