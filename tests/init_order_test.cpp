// Regression: a destroy really can be the FIRST library call in a process. A program with a
// statically-initialized mutex/cond that never spawns a thread still runs the destructors at
// exit; MutexDestroy/CondDestroy used to call kernel::Enter() without EnsureInit, tripping
// the monitor's invariants on a never-initialized kernel. This suite must live in its own
// binary so nothing initializes the runtime before the first test body runs.

#include <gtest/gtest.h>

#include <cerrno>

#include "src/core/pthread.hpp"
#include "src/sync/cond.hpp"
#include "src/sync/mutex.hpp"

namespace fsup {
namespace {

// Stand-ins for objects another translation unit initialized before ours ran: structurally
// valid (magic set, no waiters) but the runtime has never been entered in this process.
TEST(InitOrderTest, DestroyIsAValidFirstLibraryCall) {
  pt_mutex_t m{};
  m.magic = kMutexMagic;
  EXPECT_EQ(0, pt_mutex_destroy(&m));
  EXPECT_EQ(EINVAL, pt_mutex_destroy(&m));  // magic cleared: double destroy is caught

  pt_cond_t c{};
  c.magic = kCondMagic;
  EXPECT_EQ(0, pt_cond_destroy(&c));
  EXPECT_EQ(EINVAL, pt_cond_destroy(&c));
}

TEST(InitOrderTest, RuntimeIsFullyUsableAfterDestroyFirstInit) {
  // The EnsureInit the destroy triggered must be the same full init every entry point gets.
  pt_mutex_t m;
  ASSERT_EQ(0, pt_mutex_init(&m));
  ASSERT_EQ(0, pt_mutex_lock(&m));
  ASSERT_EQ(0, pt_mutex_unlock(&m));
  ASSERT_EQ(0, pt_mutex_destroy(&m));

  pt_thread_t t;
  ASSERT_EQ(0, pt_create(&t, nullptr, +[](void* p) -> void* { return p; }, &m));
  void* ret = nullptr;
  ASSERT_EQ(0, pt_join(t, &ret));
  EXPECT_EQ(&m, ret);
}

}  // namespace
}  // namespace fsup
