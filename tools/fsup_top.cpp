// fsup_top — live monitor for an fsup runtime publishing FSUP_STATS_SHM.
//
// Standalone by design: this binary does NOT link against the fsup library and never touches
// the target process — it mmaps the stats file read-only and runs the seqlock reader protocol
// from stats_shm.hpp (copy the block; accept only if `seq` was even and unchanged across the
// copy). A wedged, stopped or dead target can therefore never block the monitor, and the
// monitor can never perturb the target's Pthreads kernel.
//
// Usage:  fsup_top [--once] [--interval MS] [PATH]
//         PATH defaults to $FSUP_STATS_SHM.

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "src/debug/stats_shm.hpp"

namespace {

using fsup::debug::kStatsShmMagic;
using fsup::debug::kStatsShmSize;
using fsup::debug::kStatsShmTopStacks;
using fsup::debug::kStatsShmVersion;
using fsup::debug::StatsShm;
using fsup::debug::StatsShmStack;

// Mirrors fsup::BlockReason (kernel/types.hpp) — kept by hand because this binary must not
// include library headers beyond the freestanding shm layout.
const char* ReasonName(uint8_t r) {
  static const char* kNames[] = {"none", "mutex", "cond", "join",
                                 "sigwait", "delay", "io", "lazy"};
  return r < sizeof(kNames) / sizeof(kNames[0]) ? kNames[r] : "?";
}

int64_t MonotonicNowNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// One seqlock read attempt loop. Returns false when no consistent even-sequence copy could be
// obtained (writer continuously mid-update — in practice only a crashed writer that died with
// seq odd).
bool ReadStable(const StatsShm* shared, StatsShm* out) {
  for (int tries = 0; tries < 1000; ++tries) {
    const uint32_t s1 = __atomic_load_n(&shared->seq, __ATOMIC_ACQUIRE);
    if ((s1 & 1u) != 0) {
      continue;  // writer mid-update
    }
    std::memcpy(out, shared, sizeof(*out));
    __atomic_thread_fence(__ATOMIC_ACQUIRE);
    const uint32_t s2 = __atomic_load_n(&shared->seq, __ATOMIC_ACQUIRE);
    if (s1 == s2) {
      return true;
    }
  }
  return false;
}

void PrintStacks(const char* title, const StatsShmStack* rows, bool offcpu) {
  std::printf("%s\n", title);
  bool any = false;
  for (int i = 0; i < kStatsShmTopStacks; ++i) {
    const StatsShmStack& s = rows[i];
    if (s.count == 0) {
      continue;
    }
    any = true;
    if (offcpu) {
      std::printf("  %8.2fms x%-6" PRIu64 " %s#%-6u ",
                  static_cast<double>(s.weight) / 1e6, s.count, ReasonName(s.reason), s.tag);
    } else {
      std::printf("  %8" PRIu64 " samples          ", s.count);
    }
    for (int d = 0; d < s.depth; ++d) {
      std::printf("%s0x%" PRIx64, d == 0 ? "" : ";", s.pcs[d]);
    }
    if (s.depth == 0) {
      std::printf("[unknown]");
    }
    std::printf("\n");
  }
  if (!any) {
    std::printf("  (none)\n");
  }
}

void Render(const StatsShm& s, const StatsShm* prev, int64_t interval_ns) {
  const int64_t age_ns = MonotonicNowNs() - s.updated_ns;
  std::printf("fsup_top — pid %d%s\n", s.pid,
              age_ns > 2000000000 ? "  [STALE: no publish in >2s]" : "");
  std::printf("threads: live=%u ready=%u blocked=%u   sampler: %u Hz\n", s.live_threads,
              s.ready_threads, s.blocked_threads, s.sample_hz);

  auto rate = [&](uint64_t cur, uint64_t old) -> double {
    if (prev == nullptr || interval_ns <= 0 || cur < old) {
      return 0.0;
    }
    return static_cast<double>(cur - old) * 1e9 / static_cast<double>(interval_ns);
  };
  std::printf("kernel:  ctx_switches=%" PRIu64 " (%.0f/s) dispatches=%" PRIu64
              " preemptions=%" PRIu64 " entries=%" PRIu64 " deferred_sigs=%" PRIu64 "\n",
              s.ctx_switches, rate(s.ctx_switches, prev != nullptr ? prev->ctx_switches : 0),
              s.dispatches, s.preemptions, s.kernel_entries, s.deferred_signals);
  std::printf("profile: oncpu=%" PRIu64 " (%.0f/s) offcpu=%" PRIu64 " dropped=%" PRIu64
              " blocked_total=%.1fms\n",
              s.samples_oncpu, rate(s.samples_oncpu, prev != nullptr ? prev->samples_oncpu : 0),
              s.samples_offcpu, s.samples_dropped,
              static_cast<double>(s.offcpu_blocked_ns) / 1e6);
  std::printf("pool:    mapped=%" PRIu64 "K (hw=%" PRIu64 "K) free=%" PRIu64 "K budget=%" PRIu64
              "K reuses=%" PRIu64 " maps=%" PRIu64 " lazy_commits=%" PRIu64 "\n",
              s.pool_mapped_bytes / 1024, s.pool_mapped_hw_bytes / 1024,
              s.pool_free_bytes / 1024, s.pool_budget_bytes / 1024, s.stack_reuses,
              s.stack_maps, s.lazy_commits);
  std::printf("io[%s]:  waits=%" PRIu64 " wakeups=%" PRIu64 " cache_hits=%" PRIu64
              " misses=%" PRIu64 " active_waiters=%d cached_fds=%d\n",
              s.io_epoll_backend != 0 ? "epoll" : "poll", s.io_waits, s.io_wakeups,
              s.io_cache_hits, s.io_cache_misses, s.io_active_waiters, s.io_cached_fds);
  PrintStacks("hottest on-CPU stacks:", s.top_oncpu, false);
  PrintStacks("top blocked (off-CPU):", s.top_offcpu, true);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool once = false;
  long interval_ms = 500;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
      if (interval_ms < 50) {
        interval_ms = 50;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "usage: fsup_top [--once] [--interval MS] [PATH]\n");
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    path = std::getenv("FSUP_STATS_SHM");
  }
  if (path == nullptr || path[0] == '\0') {
    std::fprintf(stderr, "fsup_top: no stats file (pass PATH or set FSUP_STATS_SHM)\n");
    return 2;
  }

  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) {
    std::fprintf(stderr, "fsup_top: open %s: %s\n", path, std::strerror(errno));
    return 1;
  }
  void* mem = ::mmap(nullptr, kStatsShmSize, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    std::fprintf(stderr, "fsup_top: mmap %s: %s\n", path, std::strerror(errno));
    return 1;
  }
  const StatsShm* shared = static_cast<const StatsShm*>(mem);

  StatsShm cur{};
  StatsShm prev{};
  bool have_prev = false;
  int64_t prev_read_ns = 0;
  for (;;) {
    // The runtime publishes magic last (release) during segment init; an attach racing init
    // simply sees zeros and reports "not ready yet" instead of garbage.
    if (__atomic_load_n(&shared->magic, __ATOMIC_ACQUIRE) != kStatsShmMagic) {
      if (once) {
        std::fprintf(stderr, "fsup_top: %s: no fsup stats segment (yet)\n", path);
        ::munmap(mem, kStatsShmSize);
        return 1;
      }
      std::printf("\x1b[H\x1b[2Jfsup_top — waiting for %s ...\n", path);
      std::fflush(stdout);
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
      continue;
    }
    if (!ReadStable(shared, &cur)) {
      std::fprintf(stderr, "fsup_top: %s: seqlock never settled (writer died mid-update?)\n",
                   path);
      ::munmap(mem, kStatsShmSize);
      return 1;
    }
    if (cur.version != kStatsShmVersion) {
      std::fprintf(stderr, "fsup_top: %s: layout version %u, expected %u\n", path, cur.version,
                   kStatsShmVersion);
      ::munmap(mem, kStatsShmSize);
      return 1;
    }
    const int64_t now = MonotonicNowNs();
    if (!once) {
      std::printf("\x1b[H\x1b[2J");  // home + clear: a top-style refresh
    }
    Render(cur, have_prev ? &prev : nullptr, have_prev ? now - prev_read_ns : 0);
    std::fflush(stdout);
    if (once) {
      break;
    }
    prev = cur;
    have_prev = true;
    prev_read_ns = now;
    ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
  ::munmap(mem, kStatsShmSize);
  return 0;
}
