// Schedule-exploration runner: re-executes a test binary under perturbed schedules until one
// fails, then shrinks the failing schedule to a minimal set of forced-switch points.
//
//   fsup_explore [--window N] [--seeds N] [--permille P] [--seed0 S] [--shrink-budget N]
//                [--record-dir DIR] -- <command> [args...]
//
// Phases mirror debug/explore.hpp, but each run is a fresh subprocess, so the subject may
// fail by crashing, aborting, or any nonzero exit — whatever gtest/asserts do on a real
// ordering bug. Perturbation is injected through the library's own environment hooks:
// FSUP_EXPLORE_POINTS (explicit gate ordinals) and FSUP_EXPLORE_SEED/FSUP_EXPLORE_PROB
// (seeded random firing). Each run also sets FSUP_RECORD so a failing random run's fired
// ordinals can be lifted from the schedule log (replay::ReadLogFile) and re-verified as an
// explicit point set before shrinking.
//
// Exit status: 0 = no failure found, 1 = failure found (minimal schedule printed),
// 2 = usage/setup error.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/debug/replay.hpp"

namespace {

struct Config {
  uint64_t window = 16;
  uint32_t seeds = 8;
  uint64_t seed0 = 1;
  uint32_t permille = 30;
  uint32_t shrink_budget = 64;
  std::string record_dir = "/tmp";
  std::vector<char*> command;
};

int g_runs = 0;

std::string PointsSpec(const std::vector<uint64_t>& pts) {
  std::string s;
  for (uint64_t p : pts) {
    if (!s.empty()) {
      s += ',';
    }
    s += std::to_string(p);
  }
  return s;
}

// Runs the subject once with the given env overrides. Returns true if it PASSED (exit 0).
bool RunChild(const Config& cfg, const char* points, const char* seed, const char* prob,
              const std::string& record_path) {
  ++g_runs;
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fsup_explore: fork");
    std::exit(2);
  }
  if (pid == 0) {
    if (points != nullptr) {
      ::setenv("FSUP_EXPLORE_POINTS", points, 1);
    } else {
      ::unsetenv("FSUP_EXPLORE_POINTS");
    }
    if (seed != nullptr) {
      ::setenv("FSUP_EXPLORE_SEED", seed, 1);
      ::setenv("FSUP_EXPLORE_PROB", prob, 1);
    } else {
      ::unsetenv("FSUP_EXPLORE_SEED");
      ::unsetenv("FSUP_EXPLORE_PROB");
    }
    ::setenv("FSUP_RECORD", record_path.c_str(), 1);
    ::execvp(cfg.command[0], cfg.command.data());
    std::perror("fsup_explore: exec");
    std::_Exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    std::perror("fsup_explore: waitpid");
    std::exit(2);
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 127) {
    std::fprintf(stderr, "fsup_explore: cannot execute %s\n", cfg.command[0]);
    std::exit(2);
  }
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

bool RunWithPoints(const Config& cfg, const std::vector<uint64_t>& pts,
                   const std::string& record_path) {
  return RunChild(cfg, PointsSpec(pts).c_str(), nullptr, nullptr, record_path);
}

// Lifts the forced-switch ordinals out of a run's schedule log.
std::vector<uint64_t> FiredPoints(const std::string& record_path) {
  namespace replay = fsup::debug::replay;
  std::vector<uint64_t> fired;
  size_t count = 0;
  if (replay::ReadLogFile(record_path.c_str(), nullptr, 0, &count) != 0) {
    return fired;
  }
  std::vector<replay::LogRecord> log(count);
  if (replay::ReadLogFile(record_path.c_str(), log.data(), log.size(), &count) != 0) {
    return fired;
  }
  for (const replay::LogRecord& r : log) {
    if (r.kind == replay::Decision::kForced) {
      fired.push_back(r.a);
    }
  }
  return fired;
}

std::vector<uint64_t> Shrink(const Config& cfg, std::vector<uint64_t> pts,
                             const std::string& record_path) {
  uint32_t budget = cfg.shrink_budget;
  if (pts.size() > 1) {
    for (uint64_t p : pts) {
      if (budget == 0) {
        return pts;
      }
      --budget;
      if (!RunWithPoints(cfg, {p}, record_path)) {
        return {p};
      }
    }
  }
  for (size_t i = 0; i < pts.size() && pts.size() > 1;) {
    if (budget == 0) {
      break;
    }
    --budget;
    std::vector<uint64_t> without(pts);
    without.erase(without.begin() + static_cast<long>(i));
    if (!RunWithPoints(cfg, without, record_path)) {
      pts = std::move(without);
    } else {
      ++i;
    }
  }
  return pts;
}

[[noreturn]] void ReportFailure(const Config& cfg, const std::vector<uint64_t>& pts,
                                const char* how) {
  std::printf("fsup_explore: FAILURE found (%s) after %d runs\n", how, g_runs);
  std::printf("fsup_explore: minimal schedule: FSUP_EXPLORE_POINTS=%s %s\n",
              PointsSpec(pts).c_str(), cfg.command[0]);
  std::exit(1);
}

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: fsup_explore [--window N] [--seeds N] [--permille P] [--seed0 S]\n"
               "                    [--shrink-budget N] [--record-dir DIR] -- command...\n");
  std::exit(2);
}

uint64_t ArgU64(int argc, char** argv, int* i) {
  if (*i + 1 >= argc) {
    Usage();
  }
  return std::strtoull(argv[++*i], nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      ++i;
      break;
    }
    if (std::strcmp(argv[i], "--window") == 0) {
      cfg.window = ArgU64(argc, argv, &i);
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      cfg.seeds = static_cast<uint32_t>(ArgU64(argc, argv, &i));
    } else if (std::strcmp(argv[i], "--permille") == 0) {
      cfg.permille = static_cast<uint32_t>(ArgU64(argc, argv, &i));
    } else if (std::strcmp(argv[i], "--seed0") == 0) {
      cfg.seed0 = ArgU64(argc, argv, &i);
    } else if (std::strcmp(argv[i], "--shrink-budget") == 0) {
      cfg.shrink_budget = static_cast<uint32_t>(ArgU64(argc, argv, &i));
    } else if (std::strcmp(argv[i], "--record-dir") == 0) {
      if (i + 1 >= argc) {
        Usage();
      }
      cfg.record_dir = argv[++i];
    } else {
      Usage();
    }
  }
  for (; i < argc; ++i) {
    cfg.command.push_back(argv[i]);
  }
  if (cfg.command.empty()) {
    Usage();
  }
  cfg.command.push_back(nullptr);

  const std::string record_path =
      cfg.record_dir + "/fsup_explore." + std::to_string(::getpid()) + ".rpl";

  // Phase 0: one unperturbed run — a subject that fails on its own has no schedule to blame.
  if (!RunChild(cfg, nullptr, nullptr, nullptr, record_path)) {
    std::fprintf(stderr, "fsup_explore: subject fails without perturbation\n");
    std::remove(record_path.c_str());
    std::exit(2);
  }

  // Phase 1: systematic — a single forced switch at each gate ordinal in [0, window).
  for (uint64_t ord = 0; ord < cfg.window; ++ord) {
    if (!RunWithPoints(cfg, {ord}, record_path)) {
      std::remove(record_path.c_str());
      ReportFailure(cfg, {ord}, "systematic");  // one switch: already minimal
    }
  }

  // Phase 2: seeded random firing; on failure, lift + verify + shrink the fired set.
  const std::string prob = std::to_string(cfg.permille);
  for (uint32_t s = 0; s < cfg.seeds; ++s) {
    const std::string seed = std::to_string(cfg.seed0 + s);
    if (RunChild(cfg, nullptr, seed.c_str(), prob.c_str(), record_path)) {
      continue;
    }
    std::vector<uint64_t> fired = FiredPoints(record_path);
    std::printf("fsup_explore: seed %s failed with %zu forced switches\n", seed.c_str(),
                fired.size());
    if (!fired.empty() && fired.size() <= 64 && !RunWithPoints(cfg, fired, record_path)) {
      fired = Shrink(cfg, fired, record_path);
      std::remove(record_path.c_str());
      ReportFailure(cfg, fired, "random, shrunk");
    }
    std::remove(record_path.c_str());
    std::printf("fsup_explore: not reproducible as points; rerun with FSUP_EXPLORE_SEED=%s "
                "FSUP_EXPLORE_PROB=%s\n",
                seed.c_str(), prob.c_str());
    std::exit(1);
  }

  std::remove(record_path.c_str());
  std::printf("fsup_explore: no failure in %d runs\n", g_runs);
  return 0;
}
